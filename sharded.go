package tscds

import (
	"fmt"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
)

// This file implements ShardedMap: a key-space-partitioned front end
// composing S per-shard structures (any structure/technique pair New
// accepts) behind ONE shared timestamp source. Point operations touch
// only the owning shard — S independent structures mean S-way less
// structural contention — while range queries stay linearizable across
// shards by obtaining a single timestamp and collecting every
// overlapping shard at that instant:
//
//  1. Reserve an announcement slot (BeginRQ) on every overlapping
//     shard. The ReservedRQ sentinel pins each shard's MinActiveRQ at
//     zero, so no shard can prune state the eventual bound could need.
//  2. Lock-based EBR-RQ only: exclusively acquire every overlapping
//     shard's provider lock, in ascending shard order (concurrent
//     fan-outs order locks identically, so they cannot deadlock). This
//     waits out every in-flight (read timestamp, write label) pair on
//     those shards.
//  3. Read the shared source once. Because the source is shared, this
//     one value bounds all shards: any update that linearizes after
//     this instant — on any shard — labels with a strictly greater
//     timestamp (up to the §III-A hardware-tie corner the paper
//     already accepts for TSC).
//  4. Release the provider locks and run each shard's RangeQueryAt
//     collection at the common bound.
//
// Steps 1–3 are the per-structure RangeQuery prologue hoisted out of
// the structure and fanned across shards; RangeQueryAt is the
// remainder. The argument that (bound, collection) is a linearizable
// snapshot is therefore the same per shard as in the unsharded
// structure, and the shared bound makes the union of the per-shard
// snapshots a snapshot of the whole map at that instant.
//
// The cost is that every range query re-serializes on the shared
// source: with a Logical source, sharding point updates S ways still
// funnels all range queries (and, for vCAS, all update labelings)
// through one fetch-and-add cache line, so range-heavy workloads
// flatten as S grows. A hardware (TSC) source has no shared line to
// contend on, so sharded TSC keeps scaling — the re-serialization
// cliff rqbench's "shard" figure reproduces.

// rangeQueryAt is the collect-at-bound half of every structure's range
// query, used by the cross-shard fan-out after it has obtained the
// common snapshot bound.
type rangeQueryAt interface {
	RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV
}

// provided is implemented by the EBR-RQ structures, whose labeling
// discipline the fan-out must coordinate with (step 2 above).
type provided interface {
	Provider() *ebrrq.Provider
}

// ShardedMap is a Map partitioned across independent per-shard
// structures behind one shared timestamp source; see NewSharded.
type ShardedMap struct {
	wrap
	n int
}

var _ Map = (*ShardedMap)(nil)

// Shards reports the shard count.
func (m *ShardedMap) Shards() int { return m.n }

// NewSharded builds a Map whose key space is partitioned across shards
// independent copies of the (s, t) structure, all labeled from one
// shared timestamp source of cfg.Source's kind. Keys map to shards by
// residue (internal key mod shards), which load-balances dense and
// uniform key sets alike. Point operations touch only the owning
// shard; RangeQuery and Scan remain linearizable across shards (one
// timestamp, every overlapping shard collected at it). shards < 1 is
// treated as 1. Combination rules are exactly New's.
//
// cfg.MaxThreads bounds handles per shard as in New; each RegisterThread
// call claims one slot in every shard. cfg.Metrics additionally gets
// per-shard routing counts (Snapshot.Shards). cfg.Trace records the
// fan-out coordination cost as the "shard-fanout" phase; per-shard
// phase detail is not recorded (the recorder's rings are single-writer
// per thread, which per-shard handles do not guarantee).
func NewSharded(s Structure, t Technique, shards int, cfg Config) (*ShardedMap, error) {
	if shards < 1 {
		shards = 1
	}
	reg := core.NewShardedRegistry(shards, cfg.MaxThreads)
	src := newSource(cfg)
	if cfg.Metrics != nil {
		cfg.Metrics.SetSourceKind(cfg.Source.String())
		cfg.Metrics.SetSourceActual(core.Actual(src).String())
		cfg.Metrics.SetStructure(s.String() + "/" + t.String())
		cfg.Metrics.EnsureShards(shards)
		src = core.InstrumentSource(src, &cfg.Metrics.Source)
	}
	rb := core.NewReadBound(src, cfg.Retention)
	sh := &shardedInner{
		src:    src,
		rb:     rb,
		peek:   t == Bundle,
		inners: make([]inner, shards),
		ats:    make([]rangeQueryAt, shards),
	}
	if t == EBRRQ || t == EBRRQLockFree {
		sh.provs = make([]*ebrrq.Provider, shards)
	}
	if cfg.Metrics != nil {
		sh.stats = make([]*obs.ShardStats, shards)
		for i := range sh.stats {
			sh.stats[i] = cfg.Metrics.Shard(i)
		}
	}
	var shift uint64
	for i := 0; i < shards; i++ {
		m, ks, err := buildInner(s, t, cfg.Source, src, reg.Shard(i))
		if err != nil {
			return nil, err
		}
		shift = ks
		sh.inners[i] = m
		at, ok := m.(rangeQueryAt)
		if !ok {
			return nil, fmt.Errorf("tscds: %v/%v does not support sharding", s, t)
		}
		sh.ats[i] = at
		if sh.provs != nil {
			sh.provs[i] = m.(provided).Provider()
		}
		// Per-shard sinks: GC counters and allocation mode, but never the
		// recorder (its rings are single-writer per thread, which
		// per-shard handles do not guarantee). Pool stats aggregate
		// across shards like the GC counters do.
		// One SHARED retention watermark across the shards: the source is
		// shared, so a single prune intent covers every shard's truncation
		// and one CheckAt validates a cross-shard historical bound.
		wireSinks(m, cfg.Metrics, nil, cfg.Alloc, rb)
	}
	var tr *trace.Recorder
	if cfg.Trace != nil {
		tr = trace.NewRecorder(reg.Cap(), cfg.Trace.RingSize)
	}
	sh.tr = tr
	sm := &ShardedMap{
		wrap: wrap{
			m: sh, reg: reg, s: s, t: t, src: cfg.Source, srcImpl: src,
			shift: shift, obs: cfg.Metrics, tr: tr,
			rb: rb, hist: t == VCAS || t == Bundle,
		},
		n: shards,
	}
	if cfg.Durability != nil {
		// The WAL shards by the same internal-key residue as the map,
		// so each shard's log is ordered by that shard's update
		// serialization.
		if err := sm.enableDurability(cfg, shards); err != nil {
			return nil, err
		}
	}
	return sm, nil
}

// shardedInner composes the per-shard structures behind the facade's
// inner surface. Keys arriving here are internal (post-shift) keys;
// the partition is by internal-key residue, which is as consistent a
// partition as any (the facade's shift is a constant).
type shardedInner struct {
	inners []inner
	ats    []rangeQueryAt    // inners, pre-asserted for the fan-out
	provs  []*ebrrq.Provider // per-shard providers; nil unless EBR-RQ
	stats  []*obs.ShardStats // per-shard routing counts; nil without metrics
	src    core.Source       // the one shared source
	rb     *core.ReadBound   // the one shared retention watermark
	peek   bool              // bound via Peek (bundles) rather than Snapshot
	tr     *trace.Recorder   // fan-out spans only; never forwarded to shards
}

func (sh *shardedInner) shard(key uint64) int { return int(key % uint64(len(sh.inners))) }

func (sh *shardedInner) Insert(th *core.Thread, key, val uint64) bool {
	i := sh.shard(key)
	if sh.stats != nil {
		sh.stats[i].Ops.Inc()
	}
	return sh.inners[i].Insert(th.Shard(i), key, val)
}

func (sh *shardedInner) Delete(th *core.Thread, key uint64) bool {
	i := sh.shard(key)
	if sh.stats != nil {
		sh.stats[i].Ops.Inc()
	}
	return sh.inners[i].Delete(th.Shard(i), key)
}

func (sh *shardedInner) Contains(th *core.Thread, key uint64) bool {
	i := sh.shard(key)
	if sh.stats != nil {
		sh.stats[i].Ops.Inc()
	}
	return sh.inners[i].Contains(th.Shard(i), key)
}

func (sh *shardedInner) Get(th *core.Thread, key uint64) (uint64, bool) {
	i := sh.shard(key)
	if sh.stats != nil {
		sh.stats[i].Ops.Inc()
	}
	return sh.inners[i].Get(th.Shard(i), key)
}

// RangeQuery collects [lo, hi] across every overlapping shard at one
// shared-source instant; see the file comment for the protocol and its
// linearizability argument.
func (sh *shardedInner) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	n := len(sh.inners)
	if n == 1 {
		if sh.stats != nil {
			sh.stats[0].RQs.Inc()
		}
		return sh.inners[0].RangeQuery(th.Shard(0), lo, hi, out)
	}
	// Shard i holds a key in [lo, hi] iff the interval covers a full
	// residue cycle, or i's residue distance from lo's shard is within
	// the interval's width.
	all := hi-lo >= uint64(n-1)
	first := lo % uint64(n)
	width := hi - lo
	hit := func(i int) bool {
		return all || (uint64(i)+uint64(n)-first)%uint64(n) <= width
	}

	tr := sh.tr
	base := len(out)
	for {
		var mark uint64
		if tr != nil {
			mark = tr.Now()
		}
		for i := 0; i < n; i++ {
			if hit(i) {
				th.Shard(i).BeginRQ()
			}
		}
		var s core.TS
		switch {
		case sh.provs != nil:
			for i := 0; i < n; i++ {
				if hit(i) {
					sh.provs[i].RQLock()
				}
			}
			s = sh.src.Snapshot()
			for i := 0; i < n; i++ {
				if hit(i) {
					sh.provs[i].RQUnlock()
				}
			}
		case sh.peek:
			s = sh.src.Peek()
		default:
			s = sh.src.Snapshot()
		}
		if tr != nil {
			tr.Span(th.ID, trace.PhaseShardFanout, mark)
		}
		for i := 0; i < n; i++ {
			if !hit(i) {
				continue
			}
			out = sh.ats[i].RangeQueryAt(th.Shard(i), lo, hi, s, out)
		}
		if core.SnapshotValid(sh.src, s) {
			if sh.stats != nil {
				for i := 0; i < n; i++ {
					if hit(i) {
						sh.stats[i].RQs.Inc()
					}
				}
			}
			return out
		}
		// The shared source switched generations mid-fan-out: the common
		// bound can no longer order against post-switch labels, so a
		// partially post-switch collection could tear the cross-shard
		// snapshot. Discard everything and redo the whole fan-out.
		if tr != nil {
			tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		}
		out = out[:base]
	}
}

// SnapshotAll collects every pair in [lo, hi] (internal keys) from
// every shard at one shared-source bound and returns the bound with
// the collection — the snapshot flusher's primitive. It is RangeQuery
// with every shard hit, the bound exposed, and the same generation-
// revalidation retry.
func (sh *shardedInner) SnapshotAll(th *core.Thread, lo, hi uint64, out []core.KV) ([]core.KV, core.TS) {
	n := len(sh.inners)
	base := len(out)
	for {
		for i := 0; i < n; i++ {
			th.Shard(i).BeginRQ()
		}
		var s core.TS
		switch {
		case sh.provs != nil:
			for i := 0; i < n; i++ {
				sh.provs[i].RQLock()
			}
			s = sh.src.Snapshot()
			for i := 0; i < n; i++ {
				sh.provs[i].RQUnlock()
			}
		case sh.peek:
			s = sh.src.Peek()
		default:
			s = sh.src.Snapshot()
		}
		for i := 0; i < n; i++ {
			out = sh.ats[i].RangeQueryAt(th.Shard(i), lo, hi, s, out)
		}
		if core.SnapshotValid(sh.src, s) {
			return out, s
		}
		out = out[:base]
	}
}

// Len sums the shards; quiescent use only, like the structures' own Len.
func (sh *shardedInner) Len() int {
	n := 0
	for _, m := range sh.inners {
		n += m.Len()
	}
	return n
}

// Drain forwards to every shard that retains reader memory.
func (sh *shardedInner) Drain() {
	for _, m := range sh.inners {
		if d, ok := m.(interface{ Drain() }); ok {
			d.Drain()
		}
	}
}

package tscds

import (
	"fmt"
	"sort"
	"testing"
)

// shardCounts is the shard sweep the acceptance criteria pin.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedCrossProduct model-checks every valid (structure,
// technique) pair through the sharded front end at each shard count:
// point operations against a reference map, then full- and partial-range
// queries compared key-for-key in sorted order.
func TestShardedCrossProduct(t *testing.T) {
	for _, c := range allCombos() {
		for _, n := range shardCounts {
			t.Run(fmt.Sprintf("%v/%v/shards=%d", c.S, c.T, n), func(t *testing.T) {
				m, err := NewSharded(c.S, c.T, n, Config{Source: Logical, MaxThreads: 4})
				if err != nil {
					t.Fatal(err)
				}
				if m.Shards() != n {
					t.Fatalf("Shards() = %d, want %d", m.Shards(), n)
				}
				th, err := m.RegisterThread()
				if err != nil {
					t.Fatal(err)
				}
				defer th.Release()
				model := map[uint64]uint64{}
				for k := uint64(0); k < 64; k++ {
					if m.Insert(th, k, k*10) != true {
						t.Fatalf("Insert(%d) = false", k)
					}
					model[k] = k * 10
				}
				for k := uint64(0); k < 64; k += 3 {
					if !m.Delete(th, k) {
						t.Fatalf("Delete(%d) = false", k)
					}
					delete(model, k)
				}
				for k := uint64(0); k < 64; k++ {
					_, want := model[k]
					if got := m.Contains(th, k); got != want {
						t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
					}
					v, ok := m.Get(th, k)
					if ok != want || (ok && v != model[k]) {
						t.Fatalf("Get(%d) = %d,%v want %d,%v", k, v, ok, model[k], want)
					}
				}
				checkRange := func(lo, hi uint64) {
					t.Helper()
					got := m.RangeQuery(th, lo, hi, nil)
					sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
					var want []KV
					for k := lo; k <= hi; k++ {
						if v, ok := model[k]; ok {
							want = append(want, KV{Key: k, Val: v})
						}
					}
					if len(got) != len(want) {
						t.Fatalf("RangeQuery(%d,%d): %d pairs, want %d", lo, hi, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("RangeQuery(%d,%d)[%d] = %v, want %v", lo, hi, i, got[i], want[i])
						}
					}
				}
				checkRange(0, 63)  // every shard overlaps
				checkRange(5, 5)   // exactly one shard overlaps
				checkRange(10, 12) // a strict subset of shards when n > 4
				if got, want := m.Len(), len(model); got != want {
					t.Fatalf("Len = %d, want %d", got, want)
				}
			})
		}
	}
}

// TestShardedLockFreeEBRLogicalOnly checks the combination rules carry
// through sharding: lock-free EBR-RQ composes with a Logical source and
// is rejected with TSC, shard by shard.
func TestShardedLockFreeEBRLogicalOnly(t *testing.T) {
	if _, err := NewSharded(BST, EBRRQLockFree, 4, Config{Source: Logical}); err != nil {
		t.Fatalf("logical lock-free EBR-RQ rejected: %v", err)
	}
	if _, err := NewSharded(BST, EBRRQLockFree, 4, Config{Source: TSC}); err == nil {
		t.Fatal("TSC lock-free EBR-RQ accepted")
	}
	if _, err := NewSharded(LazyList, EBRRQ, 4, Config{}); err == nil {
		t.Fatal("lazy list EBR-RQ accepted")
	}
}

// TestShardedLenDrainAggregation pins the quiescent aggregation paths:
// Len sums live keys across shards, and the Len-triggered Drain empties
// every shard's limbo list (visible through the shared GC gauge).
func TestShardedLenDrainAggregation(t *testing.T) {
	met := NewMetrics()
	m, err := NewSharded(Citrus, EBRRQ, 4, Config{Source: Logical, MaxThreads: 2, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	for k := uint64(0); k < 100; k++ {
		m.Insert(th, k, k)
	}
	for k := uint64(0); k < 100; k += 2 {
		m.Delete(th, k)
	}
	snap := met.Snapshot()
	if snap.GC.LimboRetired == 0 {
		t.Fatal("no limbo retirements recorded across shards")
	}
	if got := m.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
	if live := met.Snapshot().GC.LimboLen; live != 0 {
		t.Fatalf("limbo population after Len-drain = %d, want 0", live)
	}
}

// TestShardedMetricsShardSums pins the per-shard routing counts: the
// Ops sum equals the point operations issued, each op landed on the
// key's residue shard, and a narrow range query touches exactly the
// overlapping shards.
func TestShardedMetricsShardSums(t *testing.T) {
	const shards = 4
	met := NewMetrics()
	m, err := NewSharded(BST, VCAS, shards, Config{Source: Logical, MaxThreads: 2, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	const keys = 40 // 10 point ops per shard under residue partitioning
	for k := uint64(0); k < keys; k++ {
		m.Insert(th, k, k)
	}
	snap := met.Snapshot()
	if len(snap.Shards) != shards {
		t.Fatalf("snapshot has %d shard entries, want %d", len(snap.Shards), shards)
	}
	var ops uint64
	for i, sh := range snap.Shards {
		ops += sh.Ops
		if sh.Ops != keys/shards {
			t.Fatalf("shard %d ops = %d, want %d", i, sh.Ops, keys/shards)
		}
	}
	if ops != keys {
		t.Fatalf("shard ops sum = %d, want %d", ops, keys)
	}

	// [2,2] lives on one shard; [0,39] spans all of them. BST applies no
	// key shift, so user keys are internal keys here.
	m.RangeQuery(th, 2, 2, nil)
	m.RangeQuery(th, 0, keys-1, nil)
	snap = met.Snapshot()
	var rqs uint64
	for i, sh := range snap.Shards {
		rqs += sh.RQs
		want := uint64(1)
		if i == 2 {
			want = 2
		}
		if sh.RQs != want {
			t.Fatalf("shard %d rqs = %d, want %d", i, sh.RQs, want)
		}
	}
	if rqs != shards+1 {
		t.Fatalf("shard rqs sum = %d, want %d", rqs, shards+1)
	}
}

// TestShardedTraceFanoutPhase checks a sharded range query records the
// shard-fanout coordination span.
func TestShardedTraceFanoutPhase(t *testing.T) {
	m, err := NewSharded(SkipList, Bundle, 4, Config{Source: Logical, MaxThreads: 2, Trace: &TraceConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	for k := uint64(0); k < 32; k++ {
		m.Insert(th, k, k)
	}
	m.RangeQuery(th, 0, 31, nil)
	var found bool
	for _, p := range m.TraceSnapshot(false).Phases {
		if p.Phase == "shard-fanout" {
			found = true
			if p.Count == 0 {
				t.Fatal("shard-fanout recorded with zero count")
			}
			if p.Unit != "ns" {
				t.Fatalf("shard-fanout unit = %q, want ns", p.Unit)
			}
		}
	}
	if !found {
		t.Fatal("no shard-fanout phase in trace snapshot")
	}
}

// TestShardedRegisterExhaustion checks the facade surfaces per-shard
// capacity limits and a failed registration does not leak slots.
func TestShardedRegisterExhaustion(t *testing.T) {
	m, err := NewSharded(LazyList, VCAS, 2, Config{Source: Logical, MaxThreads: 3})
	if err != nil {
		t.Fatal(err)
	}
	ths := make([]*Thread, 3)
	for i := range ths {
		th, err := m.RegisterThread()
		if err != nil {
			t.Fatal(err)
		}
		ths[i] = th
	}
	if _, err := m.RegisterThread(); err == nil {
		t.Fatal("registration past per-shard capacity succeeded")
	}
	ths[1].Release()
	if _, err := m.RegisterThread(); err != nil {
		t.Fatalf("slot not reusable after release: %v", err)
	}
}

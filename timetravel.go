package tscds

import (
	"errors"
	"time"

	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
)

// This file implements MVCC time-travel reads: GetAt, RangeQueryAt and
// ScanAt read the map as of a caller-chosen past timestamp. The vCAS
// and Bundle techniques already retain, per key, every version an
// in-flight range query could need — the same walk that collects a
// range at a snapshot bound s collects it at ANY timestamp, provided
// truncation has not passed it. Time travel is therefore the live
// range-query machinery pointed at an old instant, plus a watermark
// (core.ReadBound) that makes "truncation passed it" a typed error
// instead of a silently-too-new value:
//
//   - The reader reserves its announcement slot (BeginRQ), then
//     validates ts against the watermark (CheckAt), then announces ts
//     and collects. Pruners publish their intended bound BEFORE
//     scanning the slots, so every read either refuses or is protected
//     by its announcement — never racing a truncation past its ts.
//   - Config.Retention widens the watermark: versions younger than
//     Peek()-Retention are never offered to truncation, so reads
//     inside the window always resolve.
//
// EBR-RQ keeps limbo lists of deleted nodes, not per-key version
// chains: once an update overwrites a value or a key's liveness
// changes, the previous state is unreachable even though the node's
// memory lingers. Those cells refuse with ErrHistoryUnsupported.

// Typed errors for time-travel reads (aliases of the internal/core
// values, so errors.Is works against either package's name).
var (
	// ErrTruncatedHistory: the requested timestamp is older than
	// retained history — the version current at ts may already be
	// truncated, so the read refuses rather than serve a too-new value.
	ErrTruncatedHistory = core.ErrTruncatedHistory
	// ErrFutureTimestamp: the requested timestamp is ahead of the
	// source; no consistent snapshot exists there yet.
	ErrFutureTimestamp = core.ErrFutureTimestamp
	// ErrHistoryUnsupported: the map's technique (EBR-RQ) retains no
	// per-key version history, so no past timestamp can be served.
	ErrHistoryUnsupported = errors.New("tscds: technique retains no version history (time travel requires vCAS or Bundle)")
)

// Now returns a timestamp capturing the present moment; see Map.Now.
// Snapshot (not Peek) is deliberate: on a logical source it
// pre-increments the counter, so every later update labels strictly
// greater and a read at this timestamp observes exactly the current
// state.
func (w *wrap) Now() uint64 { return uint64(w.srcImpl.Snapshot()) }

// GetAt reads key as of ts; see Map.GetAt. It is a width-zero
// RangeQueryAt: the same announce/validate/walk protocol, the same
// boundary rule (a version labeled exactly ts is included, a delete
// labeled exactly ts excludes the key).
func (w *wrap) GetAt(th *Thread, key, ts uint64) (uint64, bool, error) {
	if !w.hist {
		return 0, false, ErrHistoryUnsupported
	}
	if key > MaxKey {
		return 0, false, nil
	}
	var tmp [1]KV
	kvs, err := w.RangeQueryAt(th, key, key, ts, tmp[:0])
	if err != nil || len(kvs) == 0 {
		return 0, false, err
	}
	return kvs[0].Val, true, nil
}

// RangeQueryAt collects [lo, hi] as of ts; see Map.RangeQueryAt. As
// with RangeQuery, an empty interval returns buf unchanged without
// validating ts (no snapshot is taken, so there is nothing to refuse).
func (w *wrap) RangeQueryAt(th *Thread, lo, hi, ts uint64, buf []KV) ([]KV, error) {
	if !w.hist {
		return buf, ErrHistoryUnsupported
	}
	if hi < lo || lo > MaxKey {
		return buf, nil
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	if w.obs == nil && w.tr == nil {
		return w.rangeQueryAt(th, lo, hi, ts, buf)
	}
	w.tr.OpBegin(th.ID, trace.OpRange)
	start := time.Now()
	buf, err := w.rangeQueryAt(th, lo, hi, ts, buf)
	w.observe(th, obs.OpRange, trace.OpRange, start)
	if w.obs != nil {
		switch {
		case err == nil:
			w.obs.History.Reads.Inc()
		case errors.Is(err, ErrTruncatedHistory):
			w.obs.History.Truncations.Inc()
		}
	}
	return buf, err
}

// rangeQueryAt is RangeQueryAt after clamping and instrumentation: the
// reserve-validate-collect protocol over the internal key space.
func (w *wrap) rangeQueryAt(th *Thread, lo, hi, ts uint64, buf []KV) ([]KV, error) {
	base := len(buf)
	lo, hi = lo+w.shift, hi+w.shift
	var err error
	if sh, ok := w.m.(*shardedInner); ok {
		buf, err = sh.rangeQueryAtBound(th, lo, hi, core.TS(ts), buf)
	} else {
		// Reserve the slot FIRST: from here until the structure's
		// RangeQueryAt announces ts, MinActiveRQ is pinned at zero, so
		// no pruner that CheckAt has not already accounted for can pass
		// ts. The structure's collection announces and releases.
		th.BeginRQ()
		if err = w.rb.CheckAt(core.TS(ts)); err != nil {
			th.DoneRQ()
			return buf, err
		}
		buf = w.m.(rangeQueryAt).RangeQueryAt(th, lo, hi, core.TS(ts), buf)
	}
	if err != nil {
		return buf, err
	}
	if w.shift != 0 {
		for i := base; i < len(buf); i++ {
			buf[i].Key -= w.shift
		}
	}
	return buf, nil
}

// ScanAt streams the snapshot at ts in ascending key order; see
// Map.ScanAt.
func (w *wrap) ScanAt(th *Thread, lo, hi, ts uint64, fn func(KV) bool) error {
	kvs, err := w.RangeQueryAt(th, lo, hi, ts, nil)
	if err != nil {
		return err
	}
	core.SortKVs(kvs)
	for _, kv := range kvs {
		if !fn(kv) {
			return nil
		}
	}
	return nil
}

// rangeQueryAtBound is the cross-shard historical fan-out: reserve
// every overlapping shard, validate ts once against the shared
// watermark, then collect each shard at ts. Unlike the live fan-out
// there is no generation-revalidation retry loop — ts is a fixed
// number, so the cut "labels <= ts" is stable across an adaptive
// generation switch (later generations are numerically greater, and a
// version still Pending can only resolve to a label at or after the
// present, which CheckAt already placed above ts).
func (sh *shardedInner) rangeQueryAtBound(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) ([]core.KV, error) {
	n := len(sh.inners)
	all := hi-lo >= uint64(n-1)
	first := lo % uint64(n)
	width := hi - lo
	hit := func(i int) bool {
		return all || (uint64(i)+uint64(n)-first)%uint64(n) <= width
	}
	for i := 0; i < n; i++ {
		if hit(i) {
			th.Shard(i).BeginRQ()
		}
	}
	if err := sh.rb.CheckAt(s); err != nil {
		for i := 0; i < n; i++ {
			if hit(i) {
				th.Shard(i).DoneRQ()
			}
		}
		return out, err
	}
	for i := 0; i < n; i++ {
		if !hit(i) {
			continue
		}
		out = sh.ats[i].RangeQueryAt(th.Shard(i), lo, hi, s, out)
	}
	if sh.stats != nil {
		for i := 0; i < n; i++ {
			if hit(i) {
				sh.stats[i].RQs.Inc()
			}
		}
	}
	return out, nil
}

package tscds

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// histCombos returns the (structure, technique) pairs whose technique
// retains per-key version history — the cells where time travel works.
func histCombos() []struct {
	S Structure
	T Technique
} {
	var out []struct {
		S Structure
		T Technique
	}
	for _, c := range allCombos() {
		if c.T == VCAS || c.T == Bundle {
			out = append(out, c)
		}
	}
	return out
}

// retainAll is a retention window wider than any payload the sources
// can produce: the watermark never rises and every stamp must resolve.
const retainAll = ^uint64(0)

// TestTimeTravelExactBoundary pins the snapshot tie rule end to end for
// every history-retaining cell: a version whose label equals the
// requested timestamp IS in the snapshot, and a delete whose label
// equals the requested timestamp has already REMOVED the key. The
// update's label is located by probing GetAt over the (pre, post)
// stamp interval bracketing the update — the first timestamp at which
// the new state is visible is the label itself, so the assertions at
// label and label-1 exercise exactly the inclusive/exclusive boundary.
func TestTimeTravelExactBoundary(t *testing.T) {
	for _, c := range histCombos() {
		c := c
		name := strings.ReplaceAll(fmt.Sprintf("%v-%v", c.S, c.T), " ", "_")
		t.Run(name, func(t *testing.T) {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2, Retention: retainAll})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()

			const key, val = 7, 111
			// Neighbors on both sides so the historical walk has
			// structure to traverse around the probed key.
			m.Insert(th, key-2, 1)
			m.Insert(th, key+2, 2)

			present := func(ts uint64) bool {
				t.Helper()
				v, ok, err := m.GetAt(th, key, ts)
				if err != nil {
					t.Fatalf("GetAt(%d, ts=%d): %v", key, ts, err)
				}
				if ok && v != val {
					t.Fatalf("GetAt(%d, ts=%d) = %d, want %d", key, ts, v, val)
				}
				return ok
			}
			// label locates the first timestamp in (pre, post] at which
			// the state flips to want.
			label := func(pre, post uint64, want bool) uint64 {
				t.Helper()
				for ts := pre + 1; ts <= post; ts++ {
					if present(ts) == want {
						return ts
					}
				}
				t.Fatalf("no timestamp in (%d,%d] observes present=%v", pre, post, want)
				return 0
			}

			pre := m.Now()
			if !m.Insert(th, key, val) {
				t.Fatal("insert failed")
			}
			post := m.Now()
			ins := label(pre, post, true)
			if present(ins - 1) {
				t.Fatalf("key visible at %d, one below the insert label %d", ins-1, ins)
			}
			if !present(ins) {
				t.Fatalf("insert labeled %d not in the snapshot at its own label", ins)
			}

			pre = m.Now()
			if !m.Delete(th, key) {
				t.Fatal("delete failed")
			}
			post = m.Now()
			del := label(pre, post, false)
			if !present(del - 1) {
				t.Fatalf("key absent at %d, one below the delete label %d", del-1, del)
			}
			if present(del) {
				t.Fatalf("delete labeled %d did not remove the key from the snapshot at its own label", del)
			}

			// The range walk must agree with the point walk at both ties.
			for _, tc := range []struct {
				ts   uint64
				want int
			}{{ins, 1}, {ins - 1, 0}, {del, 0}, {del - 1, 1}} {
				kvs, err := m.RangeQueryAt(th, key, key, tc.ts, nil)
				if err != nil {
					t.Fatalf("RangeQueryAt@%d: %v", tc.ts, err)
				}
				if len(kvs) != tc.want {
					t.Fatalf("RangeQueryAt[%d,%d]@%d = %d pairs, want %d", key, key, tc.ts, len(kvs), tc.want)
				}
			}
		})
	}
}

// TestTimeTravelUnsupported: EBR-RQ cells retain no per-key version
// history, so every time-travel entry point refuses with
// ErrHistoryUnsupported — even when a retention window is configured
// (there it only extends limbo lifetimes).
func TestTimeTravelUnsupported(t *testing.T) {
	for _, c := range allCombos() {
		if c.T == VCAS || c.T == Bundle {
			continue
		}
		c := c
		name := strings.ReplaceAll(fmt.Sprintf("%v-%v", c.S, c.T), " ", "_")
		t.Run(name, func(t *testing.T) {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2, Retention: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()
			m.Insert(th, 1, 10)
			ts := m.Now()
			if _, _, err := m.GetAt(th, 1, ts); !errors.Is(err, ErrHistoryUnsupported) {
				t.Fatalf("GetAt: err=%v, want ErrHistoryUnsupported", err)
			}
			if _, err := m.RangeQueryAt(th, 0, 10, ts, nil); !errors.Is(err, ErrHistoryUnsupported) {
				t.Fatalf("RangeQueryAt: err=%v, want ErrHistoryUnsupported", err)
			}
			if err := m.ScanAt(th, 0, 10, ts, func(KV) bool { return true }); !errors.Is(err, ErrHistoryUnsupported) {
				t.Fatalf("ScanAt: err=%v, want ErrHistoryUnsupported", err)
			}
			// Live reads are untouched by the refusal.
			if v, ok := m.Get(th, 1); !ok || v != 10 {
				t.Fatalf("Get after refusal = (%d,%v), want (10,true)", v, ok)
			}
		})
	}
}

// TestTimeTravelOutOfDomain: keys above MaxKey and empty intervals are
// misses/empty without validating the timestamp, matching the live
// read surface.
func TestTimeTravelOutOfDomain(t *testing.T) {
	m, err := New(BST, VCAS, Config{Source: Logical, MaxThreads: 2, Retention: retainAll})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	m.Insert(th, 1, 10)
	future := m.Now() + 1<<20
	if v, ok, err := m.GetAt(th, MaxKey+1, future); v != 0 || ok || err != nil {
		t.Fatalf("GetAt above MaxKey = (%d,%v,%v), want (0,false,nil)", v, ok, err)
	}
	if kvs, err := m.RangeQueryAt(th, 10, 5, future, nil); len(kvs) != 0 || err != nil {
		t.Fatalf("RangeQueryAt on empty interval = (%v,%v), want (empty,nil)", kvs, err)
	}
	if _, _, err := m.GetAt(th, 1, future); !errors.Is(err, ErrFutureTimestamp) {
		t.Fatalf("GetAt at future ts: err=%v, want ErrFutureTimestamp", err)
	}
}

// TestTimeTravelTruncationAndMetrics drives a no-retention map until
// pruning publishes a watermark, then asserts the stale stamp refuses
// with ErrTruncatedHistory and that the metrics registry counted both
// the successful historical reads and the refusals (the counters the
// CI smoke asserts on).
func TestTimeTravelTruncationAndMetrics(t *testing.T) {
	reg := NewMetrics()
	m, err := New(BST, VCAS, Config{Source: Logical, MaxThreads: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()

	stale := m.Now()
	m.Insert(th, 1, 10)
	if _, _, err := m.GetAt(th, 1, m.Now()); err != nil {
		t.Fatalf("fresh historical read: %v", err)
	}
	// Walk a key through every residue class so maybeTruncate's
	// sampling fires regardless of the facade's key shift, publishing
	// the watermark past the stale stamp.
	for k := uint64(0); k < 256; k++ {
		m.Insert(th, k, k)
		m.Delete(th, k)
	}
	if _, _, err := m.GetAt(th, 1, stale); !errors.Is(err, ErrTruncatedHistory) {
		t.Fatalf("stale read under zero retention: err=%v, want ErrTruncatedHistory", err)
	}
	s := reg.Snapshot()
	if s.History == nil {
		t.Fatal("metrics snapshot has no history block after historical reads")
	}
	if s.History.Reads == 0 || s.History.Truncations == 0 {
		t.Fatalf("history counters = %+v, want both nonzero", *s.History)
	}
	var prom strings.Builder
	reg.WriteProm(&prom)
	for _, fam := range []string{"tscds_history_reads_total", "tscds_history_truncations_total"} {
		if !strings.Contains(prom.String(), fam) {
			t.Fatalf("Prometheus exposition missing %s:\n%s", fam, prom.String())
		}
	}
}

// TestCheckpointAt covers the durable point-in-time export: a snapshot
// collected through retained history at a past timestamp is a valid
// recovery base (recovery still converges to the PRESENT state, because
// only WAL segments the past bound covers are pruned), and the error
// surface matches the read path — ErrHistoryUnsupported without a
// history-retaining technique, ErrFutureTimestamp ahead of the source,
// ErrTruncatedHistory below the watermark, and a configuration error
// without durability at all.
func TestCheckpointAt(t *testing.T) {
	dir := t.TempDir()
	m, err := New(BST, VCAS, Config{
		Source: Logical, MaxThreads: 2, Retention: retainAll,
		Durability: &Durability{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	dm := m.(DurableMap)
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 5; k++ {
		m.Insert(th, k, k*100)
	}
	past := m.Now()
	m.Delete(th, 2)
	m.Insert(th, 6, 600)

	if err := dm.CheckpointAt(m.Now() + 1000); !errors.Is(err, ErrFutureTimestamp) {
		t.Fatalf("CheckpointAt at future ts: err=%v, want ErrFutureTimestamp", err)
	}
	if err := dm.CheckpointAt(past); err != nil {
		t.Fatalf("CheckpointAt(%d): %v", past, err)
	}
	th.Release()
	if err := dm.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the past-timestamp snapshot plus the retained WAL
	// tail must land on the present state, not the snapshot's.
	m2, err := New(BST, VCAS, Config{
		Source: Logical, MaxThreads: 2,
		Durability: &Durability{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	th2, err := m2.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Release()
	want := map[uint64]uint64{1: 100, 3: 300, 4: 400, 5: 500, 6: 600}
	kvs := m2.RangeQuery(th2, 0, MaxKey, nil)
	if len(kvs) != len(want) {
		t.Fatalf("recovered %d pairs %v, want %d", len(kvs), kvs, len(want))
	}
	for _, kv := range kvs {
		if want[kv.Key] != kv.Val {
			t.Fatalf("recovered (%d,%d), want val %d", kv.Key, kv.Val, want[kv.Key])
		}
	}
	if err := m2.(DurableMap).Close(); err != nil {
		t.Fatal(err)
	}

	// Error surface on the remaining configurations.
	eb, err := New(BST, EBRRQ, Config{
		Source: Logical, MaxThreads: 2,
		Durability: &Durability{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eb.(DurableMap).CheckpointAt(1); !errors.Is(err, ErrHistoryUnsupported) {
		t.Fatalf("CheckpointAt on EBR-RQ: err=%v, want ErrHistoryUnsupported", err)
	}
	_ = eb.(DurableMap).Close()

	plain, err := New(BST, VCAS, Config{Source: Logical, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.(DurableMap).CheckpointAt(1); err == nil {
		t.Fatal("CheckpointAt without durability: want an error")
	}
}

// TestCheckpointAtTruncated: under a zero retention window the
// watermark chases the source, so a checkpoint at a stale stamp must
// refuse exactly like a read there.
func TestCheckpointAtTruncated(t *testing.T) {
	m, err := New(BST, VCAS, Config{
		Source: Logical, MaxThreads: 2,
		Durability: &Durability{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	dm := m.(DurableMap)
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	stale := m.Now()
	for k := uint64(0); k < 256; k++ {
		m.Insert(th, k, k)
		m.Delete(th, k)
	}
	if err := dm.CheckpointAt(stale); !errors.Is(err, ErrTruncatedHistory) {
		t.Fatalf("CheckpointAt at stale ts under zero retention: err=%v, want ErrTruncatedHistory", err)
	}
	_ = dm.Close()
}

// TestTimeTravelRetentionEdgeRace is the retention-boundary soak, meant
// for -race: writers churn versions and drive pruning (including
// explicit Drain calls, and recycling allocators in the pooled
// variants) while readers repeatedly re-read at fixed past timestamps
// as those timestamps age across the retention edge. The MVCC
// contract under test: a read at a fixed timestamp returns THE SAME
// answer every time until the watermark passes it, after which it
// refuses forever — it never returns a younger value, a recycled
// node's garbage, or flips back from refusal to success.
func TestTimeTravelRetentionEdgeRace(t *testing.T) {
	cells := []struct {
		S     Structure
		T     Technique
		Alloc AllocMode
	}{
		{BST, VCAS, 0},
		{BST, VCAS, AllocPool},
		{Citrus, Bundle, 0},
		{SkipList, VCAS, AllocPool},
		{LazyList, Bundle, AllocPool},
	}
	iters := 3000
	if testing.Short() {
		iters = 500
	}
	for _, c := range cells {
		c := c
		name := strings.ReplaceAll(fmt.Sprintf("%v-%v-a%d", c.S, c.T, c.Alloc), " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const writers, readers, keys = 2, 2, 16
			m, err := New(c.S, c.T, Config{
				Source:     Logical,
				MaxThreads: writers + readers,
				Retention:  2048, // ticks: stamps age out mid-run
				Alloc:      c.Alloc,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Both sides are bounded: on a single-CPU box an open-ended
			// writer loop starves -race scheduling. Once the writers
			// finish, the remaining reader iterations re-validate their
			// pinned stamps against a quiescing map.
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				th, err := m.RegisterThread()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w int, th *Thread) {
					defer wg.Done()
					defer th.Release()
					for i := 0; i < iters; i++ {
						key := uint64(i % keys)
						m.Insert(th, key, uint64(w+1)<<32|uint64(i))
						m.Delete(th, key)
						if i%64 == 0 {
							m.Drain() // recycle everything retired so far
						}
					}
				}(w, th)
			}

			type obsAt struct {
				ts    uint64
				key   uint64
				val   uint64
				ok    bool
				trunc bool
			}
			var rg sync.WaitGroup
			for r := 0; r < readers; r++ {
				th, err := m.RegisterThread()
				if err != nil {
					t.Fatal(err)
				}
				rg.Add(1)
				go func(r int, th *Thread) {
					defer rg.Done()
					defer th.Release()
					var pinned []obsAt
					for i := 0; i < iters; i++ {
						key := uint64(i % keys)
						if i%8 == 0 { // pin a fresh stamp with its answer
							ts := m.Now()
							v, ok, err := m.GetAt(th, key, ts)
							if err == nil {
								pinned = append(pinned, obsAt{ts: ts, key: key, val: v, ok: ok})
								if len(pinned) > 32 {
									pinned = pinned[1:]
								}
							} else if !errors.Is(err, ErrTruncatedHistory) {
								t.Errorf("reader %d: GetAt at fresh ts %d: %v", r, ts, err)
								return
							}
						}
						if len(pinned) == 0 {
							continue
						}
						p := &pinned[i%len(pinned)]
						v, ok, err := m.GetAt(th, p.key, p.ts)
						switch {
						case err == nil:
							if p.trunc {
								t.Errorf("reader %d: ts %d resolved again after a refusal", r, p.ts)
								return
							}
							if v != p.val || ok != p.ok {
								t.Errorf("reader %d: GetAt(%d, ts=%d) = (%#x,%v), first read saw (%#x,%v)",
									r, p.key, p.ts, v, ok, p.val, p.ok)
								return
							}
							if ok && (v>>32 == 0 || v>>32 > writers) {
								t.Errorf("reader %d: GetAt(%d, ts=%d) = %#x: not a value any writer wrote",
									r, p.key, p.ts, v)
								return
							}
						case errors.Is(err, ErrTruncatedHistory):
							p.trunc = true // monotone: must refuse from now on
						default:
							t.Errorf("reader %d: GetAt(%d, ts=%d): %v", r, p.key, p.ts, err)
							return
						}
						if i%256 == 0 {
							runtime.Gosched()
						}
					}
				}(r, th)
			}
			rg.Wait()
			wg.Wait()
		})
	}
}

package tscds

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestTraceSmoke drives every combo with the flight recorder attached
// and checks the snapshot reports the traffic: exact op counts per
// class, the phase spans each technique family is instrumented to emit,
// and a JSON rendering that round-trips.
func TestTraceSmoke(t *testing.T) {
	for _, c := range allCombos() {
		t.Run(fmt.Sprintf("%v-%v", c.S, c.T), func(t *testing.T) {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 4, Trace: &TraceConfig{}})
			if err != nil {
				t.Fatal(err)
			}
			if m.Tracer() == nil {
				t.Fatal("Tracer() = nil with Config.Trace set")
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()
			for k := uint64(0); k < 100; k++ {
				m.Insert(th, k, k)
			}
			for k := uint64(0); k < 50; k++ {
				m.Delete(th, k*2)
			}
			for k := uint64(0); k < 200; k++ {
				m.Contains(th, k)
			}
			var buf []KV
			for i := 0; i < 4; i++ {
				buf = m.RangeQuery(th, 0, 99, buf[:0])
			}

			snap := m.TraceSnapshot(false)
			if snap.Threads == 0 || snap.Recorded == 0 {
				t.Fatalf("empty snapshot: threads=%d recorded=%d", snap.Threads, snap.Recorded)
			}
			ops := map[string]uint64{}
			for _, o := range snap.Ops {
				ops[o.Op] = o.Count
			}
			if ops["update"] != 150 || ops["contains"] != 200 || ops["range-query"] != 4 {
				t.Fatalf("op counts = %v, want update=150 contains=200 range-query=4", ops)
			}
			phases := map[string]bool{}
			for _, p := range snap.Phases {
				phases[p.Phase] = true
			}
			// Every technique brackets the snapshot read and the range scan.
			for _, want := range []string{"timestamp-read", "traverse"} {
				if !phases[want] {
					t.Errorf("phase %q missing; have %v", want, phases)
				}
			}
			switch c.T {
			case Bundle:
				// Updates pass through the Prepare..Finalize labeling window
				// and range queries walk bundle chains.
				for _, want := range []string{"label", "bundle-deref"} {
					if !phases[want] {
						t.Errorf("Bundle phase %q missing; have %v", want, phases)
					}
				}
			case EBRRQ:
				// Both op sides cross the announcement RW lock.
				for _, want := range []string{"lock-wait", "limbo-scan"} {
					if !phases[want] {
						t.Errorf("EBR-RQ phase %q missing; have %v", want, phases)
					}
				}
			}

			var decoded TraceSnapshot
			if err := json.Unmarshal([]byte(snap.JSON()), &decoded); err != nil {
				t.Fatalf("snapshot JSON does not parse: %v", err)
			}
			if decoded.Recorded != snap.Recorded {
				t.Fatalf("round-trip recorded = %d, want %d", decoded.Recorded, snap.Recorded)
			}
			if !strings.Contains(snap.Format(), "ops:") {
				t.Fatalf("Format() lacks ops section:\n%s", snap.Format())
			}
		})
	}
}

// TestTraceEvents checks the event ring survives a live decode: events
// come back time-ordered with valid kinds.
func TestTraceEvents(t *testing.T) {
	m, err := New(BST, VCAS, Config{Source: Logical, MaxThreads: 2, Trace: &TraceConfig{RingSize: 256}})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	for k := uint64(0); k < 32; k++ {
		m.Insert(th, k, k)
	}
	m.RangeQuery(th, 0, 31, nil)
	snap := m.TraceSnapshot(true)
	if len(snap.Events) == 0 {
		t.Fatal("no events decoded")
	}
	last := uint64(0)
	for _, ev := range snap.Events {
		if ev.Kind == "unknown" {
			t.Fatalf("undecodable event %+v", ev)
		}
		if ev.AtNS < last {
			t.Fatalf("events out of order: %d after %d", ev.AtNS, last)
		}
		last = ev.AtNS
	}
}

// TestTraceDisabledNoAllocs is the guard the instrumentation is built
// around: with Config.Trace nil (the default) the read-side hot path
// must not allocate — every trace point reduces to one nil test — and
// enabling the recorder must not change any op's allocation count,
// since ring writes and phase aggregation are allocation-free.
// (Insert is measured by delta only: lfbst allocates its candidate node
// before discovering the key is present, traced or not.)
func TestTraceDisabledNoAllocs(t *testing.T) {
	off := traceAllocProfile(t, nil)
	on := traceAllocProfile(t, &TraceConfig{})
	for i, name := range [...]string{"contains", "delete-absent", "range-query"} {
		if off[i] != 0 {
			t.Errorf("%s allocates %.1f objects/op untraced, want 0", name, off[i])
		}
	}
	for i, name := range [...]string{"contains", "delete-absent", "range-query", "insert-present"} {
		if on[i] != off[i] {
			t.Errorf("%s: tracing changes allocs/op from %.1f to %.1f", name, off[i], on[i])
		}
	}
}

func traceAllocProfile(t *testing.T, tc *TraceConfig) [4]float64 {
	t.Helper()
	m, err := New(BST, VCAS, Config{Source: Logical, MaxThreads: 2, Trace: tc})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	for k := uint64(0); k < 64; k++ {
		m.Insert(th, k, k)
	}
	buf := make([]KV, 0, 128)
	// One warm-up pass lets RangeQuery size its result before measuring.
	buf = m.RangeQuery(th, 0, 63, buf[:0])
	var p [4]float64
	p[0] = testing.AllocsPerRun(200, func() { m.Contains(th, 32) })
	p[1] = testing.AllocsPerRun(200, func() { m.Delete(th, 1<<40) })
	p[2] = testing.AllocsPerRun(200, func() { buf = m.RangeQuery(th, 0, 63, buf[:0]) })
	p[3] = testing.AllocsPerRun(200, func() { m.Insert(th, 32, 32) })
	return p
}

// TestTraceNilIsDefault checks the untraced facade stays inert: no
// recorder, zero snapshot, and a nil Tracer that still renders as
// empty JSON.
func TestTraceNilIsDefault(t *testing.T) {
	m, err := New(Citrus, Bundle, Config{Source: Logical, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Tracer() != nil {
		t.Fatal("Tracer() != nil without Config.Trace")
	}
	snap := m.TraceSnapshot(false)
	if snap.Recorded != 0 || snap.Threads != 0 || len(snap.Ops) != 0 {
		t.Fatalf("nil-trace snapshot not zero: %+v", snap)
	}
	if got := m.Tracer().String(); got != "{}" {
		t.Fatalf("nil Tracer String() = %q, want {}", got)
	}
}

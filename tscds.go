// Package tscds reproduces "Opportunities and Limitations of Hardware
// Timestamps in Concurrent Data Structures" (Grimes, Nelson-Slivon,
// Hassan, Palmieri — IPPS 2023) as a Go library: concurrent ordered maps
// with linearizable range queries, where the timestamp that synchronizes
// range queries with updates is pluggable between a global logical
// counter (the baseline) and the CPU's invariant TSC read with
// RDTSCP;LFENCE (the paper's contribution).
//
// Three range-query techniques are provided over five structures. New
// accepts exactly the combinations below (TestNewFullCrossProduct
// asserts the table against the constructor):
//
//	Structure   vCAS   Bundle   EBR-RQ(lock)   EBR-RQ(lock-free)
//	BST          yes    -        yes            Logical source only
//	NMBST        yes    -        -              -
//	Citrus       yes    yes      yes            Logical source only
//	SkipList     yes    yes      yes            Logical source only
//	LazyList     yes    yes      -              -
//
// The skip list's vCAS and EBR-RQ pairings reproduce results the paper
// built but omitted (no TSC gain was observed on them).
//
// Quickstart:
//
//	m, _ := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{Source: tscds.TSC})
//	th, _ := m.RegisterThread()           // one handle per goroutine
//	m.Insert(th, 42, 420)
//	kvs := m.RangeQuery(th, 0, 100, nil)  // linearizable snapshot
//
// The combination rules mirror the paper: vCAS targets lock-free
// structures, bundles target lock-based ones, and lock-free EBR-RQ
// cannot use hardware timestamps at all (its DCSS must validate the
// timestamp at an address), which New reports as an error.
package tscds

import (
	"fmt"
	"time"

	"tscds/internal/citrus"
	"tscds/internal/core"
	"tscds/internal/ebrrq"
	"tscds/internal/jiffy"
	"tscds/internal/lazylist"
	"tscds/internal/lfbst"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/skiplist"
	"tscds/internal/tsc"
)

// KV is a key-value pair returned by range queries.
type KV = core.KV

// Thread is a per-goroutine operation handle. Obtain one per worker
// goroutine from Map.RegisterThread and Release it when done.
type Thread = core.Thread

// SourceKind selects the timestamp implementation.
type SourceKind = core.Kind

// Timestamp source kinds.
const (
	// Logical is the shared fetch-and-add counter (the baseline whose
	// contention the paper measures).
	Logical = core.Logical
	// TSC is RDTSCP;LFENCE — the paper's hardware timestamp API.
	TSC = core.TSC
	// Monotonic is the portable fallback clock.
	Monotonic = core.Monotonic
	// Adaptive starts on TSC and fails over to the logical counter when
	// the health monitor (Config.Health) reports the hardware degraded,
	// failing back after a fault-free stretch. Timestamps carry a source
	// generation in their high bits; range queries revalidate their bound
	// against it and retry across a switch, keeping snapshots
	// linearizable. Without Config.Health it behaves like TSC (plus the
	// generation encoding).
	Adaptive = core.Adaptive
)

// Structure identifies a data structure.
type Structure int

// Structures evaluated in the paper (plus the lazy list it discusses).
const (
	// BST is the lock-free external binary search tree.
	BST Structure = iota
	// Citrus is the RCU-based internal BST with per-node locks.
	Citrus
	// SkipList is the lock-based lazy skip list.
	SkipList
	// LazyList is the lock-based sorted linked list.
	LazyList
	// NMBST is the Natarajan-Mittal edge-marked lock-free BST, the
	// second lock-free tree the vCAS work targets.
	NMBST
)

// String names the structure.
func (s Structure) String() string {
	switch s {
	case BST:
		return "lock-free BST"
	case Citrus:
		return "Citrus tree"
	case SkipList:
		return "skip list"
	case LazyList:
		return "lazy list"
	case NMBST:
		return "NM lock-free BST"
	}
	return "unknown"
}

// Technique identifies a range-query algorithm.
type Technique int

// Range-query techniques from the paper.
const (
	// VCAS is the versioned-CAS technique (Wei et al.).
	VCAS Technique = iota
	// Bundle is bundled references (Nelson et al.).
	Bundle
	// EBRRQ is the lock-based EBR-RQ (Arbel-Raviv & Brown).
	EBRRQ
	// EBRRQLockFree is the DCSS-based EBR-RQ; logical timestamps only.
	EBRRQLockFree
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case VCAS:
		return "vCAS"
	case Bundle:
		return "Bundle"
	case EBRRQ:
		return "EBR-RQ"
	case EBRRQLockFree:
		return "EBR-RQ (lock-free)"
	}
	return "unknown"
}

// AllocMode selects how a Map allocates its nodes, versions and bundle
// entries; see Config.Alloc.
type AllocMode = pool.Mode

// Allocation modes.
const (
	// AllocGC allocates everything through the Go runtime (the default).
	// Retired memory is dropped for the collector.
	AllocGC = pool.ModeGC
	// AllocPool serves allocations from per-thread free lists. On EBR-RQ
	// maps the free lists are fed by the epoch manager's prune points —
	// retired nodes flow retire -> limbo -> free list -> next Insert; on
	// vCAS and Bundle maps (whose detached versions and entries stay
	// reachable to in-flight snapshot readers and so are never recycled)
	// the pool batches and reuses never-published allocations only.
	AllocPool = pool.ModePool
	// AllocArena is AllocPool plus bump allocation from per-thread arena
	// chunks on free-list misses, batching heap traffic and improving
	// locality of nodes allocated together.
	AllocArena = pool.ModeArena
)

// Config parameterizes New.
type Config struct {
	// Source selects the timestamp implementation (default Logical).
	Source SourceKind
	// MaxThreads bounds concurrent thread handles (default 256).
	MaxThreads int
	// Metrics, when non-nil, receives operation counts, latency
	// histograms, timestamp-source stats and reclamation counters from
	// the constructed Map. Nil (the default) leaves the hot paths
	// uninstrumented: the only cost is one pointer test per operation.
	// A registry may be shared by several Maps; counters then aggregate.
	Metrics *Metrics
	// Trace, when non-nil, attaches a flight recorder to the constructed
	// Map: per-thread event rings of op begin/end records plus per-phase
	// spans and counters (traversal, timestamp read, labeling, retries,
	// helping, lock waits, limbo scans) from the technique layers. Nil
	// (the default) keeps every instrumentation point at one pointer
	// test; see TestTraceDisabledNoAllocs.
	Trace *TraceConfig
	// Alloc selects the allocation mode for the Map's internal memory
	// (default AllocGC). AllocPool and AllocArena route node, version and
	// bundle-entry allocations through per-thread pools; on EBR-RQ maps
	// the pools are additionally fed by epoch reclamation, closing the
	// retire->reuse loop. Pool hit/miss/recycle counters appear on
	// Config.Metrics snapshots when both are set.
	Alloc AllocMode
	// Health wires a TSC health monitor into an Adaptive source: its
	// Degraded flag drives failover, and it receives switch telemetry
	// (visible on its JSON snapshot / a /tschealth endpoint). Ignored by
	// non-Adaptive sources. A nil Health leaves an Adaptive source
	// pinned to hardware.
	Health *TSCHealth
	// Durability, when non-nil, makes the Map crash-safe: every
	// successful update is appended to a per-shard write-ahead log
	// (group-committed, CRC-protected) and snapshots of the whole map
	// are flushed at single source timestamps with writers running.
	// Opening over a non-empty directory recovers the durable state
	// before the constructor returns. See Durability and DurableMap.
	Durability *Durability
	// Retention is the time-travel window in source ticks: version
	// history younger than Peek()-Retention is never pruned, so GetAt/
	// RangeQueryAt/ScanAt at timestamps inside the window always
	// resolve on history-retaining techniques (vCAS and Bundle). Reads
	// below the window return ErrTruncatedHistory. Zero (the default)
	// makes no retention promise: pruning behaves as before, and only
	// not-yet-pruned timestamps resolve. On EBR-RQ maps — which retain
	// no per-key version history and refuse time travel outright — a
	// non-zero window still extends limbo-node lifetimes at the epoch
	// prune points, but cannot enable historical reads. Wider windows
	// hold proportionally more memory on update-heavy workloads: the
	// version chains ARE the history. The window is measured in ticks
	// of the current source generation (an Adaptive switch eventually
	// expires prior-generation history; within the window after a
	// switch, pre-switch timestamps still resolve).
	Retention uint64
}

// TSCHealth monitors whether the hardware timestamp counter actually
// delivers monotonicity and cross-core agreement, and carries the
// degraded signal an Adaptive source acts on; see internal/tsc.Health.
// Its String method renders a JSON snapshot for stats endpoints.
type TSCHealth = tsc.Health

// TSCHealthSnapshot is the exported point-in-time state of a TSCHealth.
type TSCHealthSnapshot = tsc.HealthSnapshot

// NewTSCHealth builds a health monitor for thread IDs in
// [0, maxThreads). Pass it in Config.Health and sample it (Sample, or
// active Probe) from the workload; adaptive sources also report faults
// into it on their own.
func NewTSCHealth(maxThreads int) *TSCHealth { return tsc.NewHealth(maxThreads) }

// TraceConfig parameterizes the flight recorder enabled by Config.Trace.
type TraceConfig struct {
	// RingSize is each thread's event-ring capacity, rounded up to a
	// power of two. Zero means trace.DefaultRingSize. The rings keep the
	// newest RingSize events per thread; aggregates cover everything.
	RingSize int
}

// Tracer is the flight recorder attached to a Map by Config.Trace; see
// package internal/obs/trace. Its String method renders the aggregate
// snapshot as JSON, so it can be registered on a stats endpoint.
type Tracer = trace.Recorder

// TraceSnapshot is the exported point-in-time state of a Map's flight
// recorder; it marshals to stable JSON.
type TraceSnapshot = trace.Snapshot

// Metrics collects operation, timestamp-source and reclamation
// statistics from Maps constructed with Config.Metrics set. Snapshot
// (or String, which returns JSON) exports the current state; see
// package internal/obs for the counter semantics.
type Metrics = obs.Registry

// MetricsSnapshot is the exported point-in-time state of a Metrics
// registry; it marshals to stable JSON.
type MetricsSnapshot = obs.Snapshot

// NewMetrics builds an empty metrics registry for Config.Metrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Map is a concurrent ordered uint64->uint64 map with linearizable range
// queries. All operations take the calling goroutine's Thread handle.
type Map interface {
	// RegisterThread allocates a handle; one per goroutine.
	RegisterThread() (*Thread, error)
	// Insert adds key; false if present.
	Insert(th *Thread, key, val uint64) bool
	// Delete removes key; false if absent.
	Delete(th *Thread, key uint64) bool
	// Contains reports presence.
	Contains(th *Thread, key uint64) bool
	// Get returns the value at key.
	Get(th *Thread, key uint64) (uint64, bool)
	// RangeQuery appends all pairs with lo <= key <= hi from one
	// linearizable snapshot to buf and returns it. An empty interval
	// (hi < lo) returns buf unchanged without taking a snapshot.
	RangeQuery(th *Thread, lo, hi uint64, buf []KV) []KV
	// Scan streams the same snapshot to fn in ascending key order;
	// returning false stops early. The snapshot is still taken in full
	// where the underlying technique requires it (EBR-RQ must scan
	// limbo lists), so early exit is a convenience, not always a
	// cost saving. An empty interval (hi < lo) never calls fn.
	Scan(th *Thread, lo, hi uint64, fn func(KV) bool)
	// Now returns a timestamp capturing the present: every update that
	// completes after Now returns labels strictly later (up to the
	// hardware-tie corner the paper accepts for TSC, where a concurrent
	// update may tie and is then included at that instant). Pass it to
	// GetAt/RangeQueryAt/ScanAt — immediately or much later — to read
	// the map as of this moment.
	Now() uint64
	// GetAt reads key as of timestamp ts: the value the newest version
	// labeled <= ts holds, or ok=false if the key was absent at ts. On
	// techniques without version history (EBR-RQ) it returns
	// ErrHistoryUnsupported; for ts older than retained history,
	// ErrTruncatedHistory; for ts ahead of the source,
	// ErrFutureTimestamp. See Config.Retention.
	GetAt(th *Thread, key, ts uint64) (uint64, bool, error)
	// RangeQueryAt is RangeQuery against the snapshot at a caller-
	// chosen past timestamp ts, with GetAt's error semantics. All
	// returned pairs are from the single instant ts, even across
	// shards.
	RangeQueryAt(th *Thread, lo, hi, ts uint64, buf []KV) ([]KV, error)
	// ScanAt streams the snapshot at ts to fn in ascending key order;
	// returning false stops early. Error semantics as GetAt; fn is
	// never called when an error is returned.
	ScanAt(th *Thread, lo, hi, ts uint64, fn func(KV) bool) error
	// Len counts keys; quiescent use only.
	Len() int
	// Drain eagerly releases memory retained for in-flight readers
	// (EBR-RQ limbo lists); a no-op for techniques that reclaim inline
	// (vCAS, bundles). Quiescent use only, like Len.
	Drain()
	// Structure and Technique identify the composition.
	Structure() Structure
	Technique() Technique
	// Source reports the requested timestamp kind.
	Source() SourceKind
	// SourceActual reports the kind actually serving timestamp reads
	// right now. It differs from Source when a hardware kind fell back
	// to the monotonic clock on an unsupported host, and for an Adaptive
	// source it is live: Logical while failed over, the hardware kind
	// otherwise.
	SourceActual() SourceKind
	// Tracer returns the flight recorder attached via Config.Trace, or
	// nil when tracing is disabled.
	Tracer() *Tracer
	// TraceSnapshot exports the flight recorder's current state (the
	// zero snapshot when tracing is disabled). events selects whether
	// the decoded per-thread event rings are included alongside the
	// aggregates.
	TraceSnapshot(events bool) TraceSnapshot
}

// MaxKey is the largest key storable in every Map (a few top values are
// reserved for sentinels across the structures).
const MaxKey = ^uint64(0) - 8

// Now returns the hardware timestamp via the paper's Listing-1 sequence
// (RDTSCP;LFENCE), falling back to a monotonic clock off amd64.
func Now() uint64 { return tsc.ReadFenced() }

// TimestampSource is the paper's drop-in timestamp API: Advance obtains
// a new timestamp (logical: fetch-and-add; hardware: a read) and Peek
// reads the current one. See core.Source for the full contract.
type TimestampSource = core.Source

// NewTimestampSource builds a timestamp source of the given kind.
func NewTimestampSource(k SourceKind) TimestampSource { return core.New(k) }

// HardwareTimestampSupported reports whether this host has an invariant
// TSC, the property required to compare timestamps across cores.
func HardwareTimestampSupported() bool { return tsc.Supported() && tsc.Invariant() }

// BatchOp is one element of a BatchStore batch.
type BatchOp = jiffy.Op

// BatchStore is the Jiffy-style multiversioned store (§III-A of the
// paper): atomic multi-key batches and long-lived consistent snapshots
// over strictly-increasing hardware-timestamp revisions.
type BatchStore = jiffy.Map

// BatchSnapshot is a long-lived consistent view of a BatchStore.
type BatchSnapshot = jiffy.Snap

// NewBatchStore builds a BatchStore. Thread handles come from the
// returned registry accessor on the store's methods; see package jiffy.
func NewBatchStore(cfg Config) (*BatchStore, *Registry) {
	reg := core.NewRegistry(cfg.MaxThreads)
	return jiffy.New(core.New(cfg.Source), reg), reg
}

// Registry hands out Thread handles for APIs constructed with an
// explicit registry (NewBatchStore).
type Registry = core.Registry

// New builds a Map from a (structure, technique, source) combination,
// rejecting combinations the paper shows are unsupported.
func New(s Structure, t Technique, cfg Config) (Map, error) {
	reg := core.NewRegistry(cfg.MaxThreads)
	src := newSource(cfg)
	if cfg.Metrics != nil {
		cfg.Metrics.SetSourceKind(cfg.Source.String())
		cfg.Metrics.SetSourceActual(core.Actual(src).String())
		cfg.Metrics.SetStructure(s.String() + "/" + t.String())
		src = core.InstrumentSource(src, &cfg.Metrics.Source)
	}
	m, shift, err := buildInner(s, t, cfg.Source, src, reg)
	if err != nil {
		return nil, err
	}
	var tr *trace.Recorder
	if cfg.Trace != nil {
		tr = trace.NewRecorder(reg.Cap(), cfg.Trace.RingSize)
	}
	rb := core.NewReadBound(src, cfg.Retention)
	w := &wrap{
		m: m, reg: reg, s: s, t: t, src: cfg.Source, srcImpl: src,
		shift: shift, obs: cfg.Metrics, tr: tr,
		rb: rb, hist: t == VCAS || t == Bundle,
	}
	wireSinks(m, cfg.Metrics, tr, cfg.Alloc, rb)
	if cfg.Durability != nil {
		if err := w.enableDurability(cfg, 1); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// newSource builds the timestamp source for a Config: an Adaptive
// source gets the configured health monitor wired in; every other kind
// is core.New.
func newSource(cfg Config) core.Source {
	if cfg.Source == Adaptive {
		return core.NewAdaptive(core.AdaptiveConfig{Health: cfg.Health})
	}
	return core.New(cfg.Source)
}

// wireSinks attaches the metrics GC counters, the flight recorder, the
// allocation mode and the retention watermark to an inner that supports
// them. Call before the structure sees traffic.
func wireSinks(m inner, metrics *Metrics, tr *trace.Recorder, alloc AllocMode, rb *core.ReadBound) {
	if rb != nil {
		if b, ok := m.(interface{ SetReadBound(*core.ReadBound) }); ok {
			b.SetReadBound(rb)
		}
	}
	if metrics != nil {
		if g, ok := m.(interface{ SetGC(*obs.GC) }); ok {
			g.SetGC(&metrics.GC)
		}
	}
	if tr != nil {
		if st, ok := m.(interface{ SetTrace(*trace.Recorder) }); ok {
			st.SetTrace(tr)
		}
	}
	if alloc != AllocGC {
		if a, ok := m.(interface {
			SetAlloc(pool.Mode, *obs.PoolStats)
		}); ok {
			var ps *obs.PoolStats
			if metrics != nil {
				ps = &metrics.Pool
				metrics.SetAllocMode(alloc.String())
			}
			a.SetAlloc(alloc, ps)
		}
	}
}

// buildInner constructs the internal structure for one (structure,
// technique) pair over src and reg, returning the key shift the facade
// must apply (structures whose head sentinel reserves key 0 shift user
// keys up by one). kind is reported in errors only; src may wrap the
// kind's source with instrumentation.
func buildInner(s Structure, t Technique, kind SourceKind, src core.Source, reg *core.Registry) (inner, uint64, error) {
	variant := ebrrq.LockBased
	if t == EBRRQLockFree {
		variant = ebrrq.LockFree
	}
	switch s {
	case BST:
		switch t {
		case VCAS:
			return lfbst.New(src, reg), 0, nil
		case EBRRQ, EBRRQLockFree:
			m, err := lfbst.NewEBR(src, reg, variant)
			if err != nil {
				return nil, 0, fmt.Errorf("tscds: %v/%v with %v source: %w", s, t, kind, err)
			}
			return m, 0, nil
		default:
			return nil, 0, fmt.Errorf("tscds: %v does not support %v", s, t)
		}
	case Citrus:
		switch t {
		case VCAS:
			return citrus.NewVcas(src, reg), 0, nil
		case Bundle:
			return citrus.NewBundle(src, reg), 0, nil
		case EBRRQ, EBRRQLockFree:
			m, err := citrus.NewEBR(src, reg, variant)
			if err != nil {
				return nil, 0, fmt.Errorf("tscds: %v/%v with %v source: %w", s, t, kind, err)
			}
			return m, 0, nil
		}
	case SkipList:
		switch t {
		case Bundle:
			return skiplist.New(src, reg), 1, nil
		case VCAS:
			return skiplist.NewVcas(src, reg), 1, nil
		case EBRRQ, EBRRQLockFree:
			m, err := skiplist.NewEBR(src, reg, variant)
			if err != nil {
				return nil, 0, fmt.Errorf("tscds: %v/%v with %v source: %w", s, t, kind, err)
			}
			return m, 1, nil
		}
	case LazyList:
		switch t {
		case VCAS:
			return lazylist.NewVcas(src, reg), 1, nil
		case Bundle:
			return lazylist.NewBundle(src, reg), 1, nil
		}
	case NMBST:
		if t != VCAS {
			return nil, 0, fmt.Errorf("tscds: %v supports only vCAS (got %v)", s, t)
		}
		return lfbst.NewNM(src, reg), 0, nil
	}
	return nil, 0, fmt.Errorf("tscds: unsupported combination %v/%v", s, t)
}

// inner is the shared surface of the internal structures.
type inner interface {
	Insert(th *core.Thread, key, val uint64) bool
	Delete(th *core.Thread, key uint64) bool
	Contains(th *core.Thread, key uint64) bool
	Get(th *core.Thread, key uint64) (uint64, bool)
	RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV
	Len() int
}

// registrar hands out Thread handles: *core.Registry for plain maps,
// *core.ShardedRegistry for sharded ones (whose handles fan out to one
// slot per shard).
type registrar interface {
	Register() (*core.Thread, error)
	Cap() int
}

// wrap adapts an internal structure to Map. shift offsets keys upward
// for structures that reserve key 0 as their head sentinel. obs and tr,
// when non-nil, receive per-operation counts/latencies and flight-record
// events; each public method pays only nil tests when they are unset.
type wrap struct {
	m       inner
	reg     registrar
	s       Structure
	t       Technique
	src     SourceKind
	srcImpl core.Source // the constructed source (possibly instrumented)
	shift   uint64
	obs     *obs.Registry
	tr      *trace.Recorder
	dur     *durable        // durability layer; nil unless Config.Durability
	rb      *core.ReadBound // retention watermark for time-travel reads
	hist    bool            // technique retains version history (vCAS/Bundle)
}

func (w *wrap) RegisterThread() (*Thread, error) { return w.reg.Register() }

// observe records one finished operation into whichever sinks are wired.
func (w *wrap) observe(th *Thread, oo obs.OpClass, to trace.Op, start time.Time) {
	el := time.Since(start)
	if w.obs != nil {
		w.obs.ObserveOp(oo, el)
	}
	w.tr.OpEnd(th.ID, to, uint64(el.Nanoseconds()))
}

// Insert discards the durability acknowledgment; durable callers who
// need it use InsertDurable (a persistent log failure also surfaces on
// WALError).
func (w *wrap) Insert(th *Thread, key, val uint64) bool {
	ok, _ := w.InsertDurable(th, key, val)
	return ok
}

// Delete mirrors Insert; see DeleteDurable for the acknowledged form.
func (w *wrap) Delete(th *Thread, key uint64) bool {
	ok, _ := w.DeleteDurable(th, key)
	return ok
}

func (w *wrap) Contains(th *Thread, key uint64) bool {
	if key > MaxKey {
		return false
	}
	if w.obs == nil && w.tr == nil {
		return w.m.Contains(th, key+w.shift)
	}
	w.tr.OpBegin(th.ID, trace.OpContains)
	start := time.Now()
	ok := w.m.Contains(th, key+w.shift)
	w.observe(th, obs.OpContains, trace.OpContains, start)
	return ok
}

func (w *wrap) Get(th *Thread, key uint64) (uint64, bool) {
	if key > MaxKey {
		return 0, false
	}
	if w.obs == nil && w.tr == nil {
		return w.m.Get(th, key+w.shift)
	}
	w.tr.OpBegin(th.ID, trace.OpContains)
	start := time.Now()
	v, ok := w.m.Get(th, key+w.shift)
	w.observe(th, obs.OpContains, trace.OpContains, start)
	return v, ok
}

func (w *wrap) RangeQuery(th *Thread, lo, hi uint64, buf []KV) []KV {
	if hi < lo || lo > MaxKey {
		return buf
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	if w.obs == nil && w.tr == nil {
		return w.rangeQuery(th, lo, hi, buf)
	}
	w.tr.OpBegin(th.ID, trace.OpRange)
	start := time.Now()
	buf = w.rangeQuery(th, lo, hi, buf)
	w.observe(th, obs.OpRange, trace.OpRange, start)
	return buf
}

// rangeQuery is RangeQuery after interval clamping and instrumentation.
func (w *wrap) rangeQuery(th *Thread, lo, hi uint64, buf []KV) []KV {
	base := len(buf)
	buf = w.m.RangeQuery(th, lo+w.shift, hi+w.shift, buf)
	if w.shift != 0 {
		for i := base; i < len(buf); i++ {
			buf[i].Key -= w.shift
		}
	}
	return buf
}

func (w *wrap) Scan(th *Thread, lo, hi uint64, fn func(KV) bool) {
	kvs := w.RangeQuery(th, lo, hi, nil)
	core.SortKVs(kvs)
	for _, kv := range kvs {
		if !fn(kv) {
			return
		}
	}
}

// Len counts keys. As a quiescent path it also drains retained limbo
// memory, so long-running callers polling Len keep the heap bounded
// even when updates have ceased.
func (w *wrap) Len() int {
	w.Drain()
	return w.m.Len()
}

func (w *wrap) Drain() {
	if d, ok := w.m.(interface{ Drain() }); ok {
		d.Drain()
	}
}

func (w *wrap) Structure() Structure { return w.s }
func (w *wrap) Technique() Technique { return w.t }
func (w *wrap) Source() SourceKind   { return w.src }
func (w *wrap) Tracer() *Tracer      { return w.tr }

func (w *wrap) SourceActual() SourceKind {
	if w.srcImpl == nil {
		return w.src
	}
	return core.Actual(w.srcImpl)
}

func (w *wrap) TraceSnapshot(events bool) TraceSnapshot {
	return w.tr.Snapshot(events)
}

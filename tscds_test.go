package tscds

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// allCombos enumerates every valid (structure, technique) pair.
func allCombos() []struct {
	S Structure
	T Technique
} {
	return []struct {
		S Structure
		T Technique
	}{
		{BST, VCAS}, {BST, EBRRQ}, {NMBST, VCAS},
		{Citrus, VCAS}, {Citrus, Bundle}, {Citrus, EBRRQ},
		{SkipList, Bundle}, {SkipList, VCAS}, {SkipList, EBRRQ},
		{LazyList, VCAS}, {LazyList, Bundle},
	}
}

func TestNewValidCombosBothSources(t *testing.T) {
	for _, c := range allCombos() {
		for _, src := range []SourceKind{Logical, TSC} {
			m, err := New(c.S, c.T, Config{Source: src})
			if err != nil {
				t.Fatalf("New(%v,%v,%v): %v", c.S, c.T, src, err)
			}
			if m.Structure() != c.S || m.Technique() != c.T || m.Source() != src {
				t.Fatalf("identity mismatch for %v/%v", c.S, c.T)
			}
		}
	}
	// Lock-free EBR-RQ exists with a logical source only.
	for _, s := range []Structure{Citrus, BST, SkipList} {
		if _, err := New(s, EBRRQLockFree, Config{Source: Logical}); err != nil {
			t.Fatalf("lock-free EBR-RQ on %v with logical source: %v", s, err)
		}
		if _, err := New(s, EBRRQLockFree, Config{Source: TSC}); err == nil {
			t.Fatalf("lock-free EBR-RQ on %v accepted TSC", s)
		}
	}
}

// TestNewFullCrossProduct exercises New over the complete
// Structure x Technique x Source cross-product, asserting that exactly
// the combinations documented in the package comment's table succeed
// (the lock-free EBR-RQ column additionally requires a Logical source).
func TestNewFullCrossProduct(t *testing.T) {
	type pair struct {
		S Structure
		T Technique
	}
	documented := map[pair]bool{
		{BST, VCAS}: true, {BST, EBRRQ}: true, {BST, EBRRQLockFree}: true,
		{NMBST, VCAS}:  true,
		{Citrus, VCAS}: true, {Citrus, Bundle}: true, {Citrus, EBRRQ}: true, {Citrus, EBRRQLockFree}: true,
		{SkipList, VCAS}: true, {SkipList, Bundle}: true, {SkipList, EBRRQ}: true, {SkipList, EBRRQLockFree}: true,
		{LazyList, VCAS}: true, {LazyList, Bundle}: true,
	}
	for _, s := range []Structure{BST, Citrus, SkipList, LazyList, NMBST} {
		for _, tech := range []Technique{VCAS, Bundle, EBRRQ, EBRRQLockFree} {
			for _, src := range []SourceKind{Logical, TSC, Monotonic} {
				want := documented[pair{s, tech}] &&
					(tech != EBRRQLockFree || src == Logical)
				m, err := New(s, tech, Config{Source: src})
				if want && err != nil {
					t.Errorf("New(%v, %v, %v) rejected a documented combination: %v", s, tech, src, err)
				}
				if !want && err == nil {
					t.Errorf("New(%v, %v, %v) accepted an undocumented combination", s, tech, src)
				}
				if err == nil && (m.Structure() != s || m.Technique() != tech || m.Source() != src) {
					t.Errorf("New(%v, %v, %v): identity mismatch", s, tech, src)
				}
			}
		}
	}
}

// Regression for unbounded limbo growth: once updates cease, the EBR-RQ
// limbo lists must converge to empty — via read-only traffic (the
// amortized Unpin path) and via the explicit quiescent Drain.
func TestLimboConvergesAfterTrafficStops(t *testing.T) {
	for _, c := range []struct {
		S Structure
		T Technique
	}{{BST, EBRRQ}, {Citrus, EBRRQ}, {SkipList, EBRRQ}} {
		t.Run(fmt.Sprintf("%v-%v", c.S, c.T), func(t *testing.T) {
			met := NewMetrics()
			m, err := New(c.S, c.T, Config{Source: TSC, MaxThreads: 4, Metrics: met})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()
			populate := func() {
				for k := uint64(0); k < 300; k++ {
					m.Insert(th, k, k)
				}
				for k := uint64(0); k < 300; k++ {
					m.Delete(th, k)
				}
				if met.GC.LimboLen.Load() == 0 {
					t.Fatal("deletes produced no limbo pressure; test is vacuous")
				}
			}
			// Updates cease; read-only traffic alone must drain limbo.
			populate()
			for i := 0; i < 2000 && met.GC.LimboLen.Load() > 0; i++ {
				m.Contains(th, uint64(i)%300)
			}
			if n := met.GC.LimboLen.Load(); n != 0 {
				t.Fatalf("limbo stuck at %d after read-only traffic", n)
			}
			// And the explicit quiescent drain empties it immediately.
			populate()
			m.Drain()
			if n := met.GC.LimboLen.Load(); n != 0 {
				t.Fatalf("limbo stuck at %d after Drain", n)
			}
		})
	}
}

// RegisterThread exhaustion surfaces as a clean error through the
// facade, and a released handle's slot is reusable.
func TestRegisterThreadExhaustionAndReuse(t *testing.T) {
	m, err := New(BST, VCAS, Config{MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterThread(); err == nil {
		t.Fatal("oversubscribed RegisterThread did not error")
	}
	th.Release()
	th2, err := m.RegisterThread()
	if err != nil {
		t.Fatalf("released slot not reusable: %v", err)
	}
	th2.Release()
}

func TestNewRejectsInvalidCombos(t *testing.T) {
	bad := []struct {
		S Structure
		T Technique
	}{
		{BST, Bundle},
		{LazyList, EBRRQ},
		{NMBST, Bundle}, {NMBST, EBRRQ},
	}
	for _, c := range bad {
		if _, err := New(c.S, c.T, Config{}); err == nil {
			t.Errorf("New(%v,%v) accepted an unsupported combination", c.S, c.T)
		}
	}
}

func TestLockFreeEBRRQRejectsTSC(t *testing.T) {
	_, err := New(Citrus, EBRRQLockFree, Config{Source: TSC})
	if err == nil {
		t.Fatal("lock-free EBR-RQ accepted a hardware timestamp")
	}
	// The cause is wrapped so callers can program against it.
	if errors.Unwrap(err) == nil {
		t.Fatalf("error not wrapped: %v", err)
	}
}

func TestBasicSemanticsEveryCombo(t *testing.T) {
	for _, c := range allCombos() {
		t.Run(fmt.Sprintf("%v-%v", c.S, c.T), func(t *testing.T) {
			m, err := New(c.S, c.T, Config{Source: TSC, MaxThreads: 4})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()
			// Key 0 must work through the facade even for structures
			// with a 0-key sentinel internally.
			if !m.Insert(th, 0, 7) || !m.Contains(th, 0) {
				t.Fatal("key 0 broken")
			}
			if v, ok := m.Get(th, 0); !ok || v != 7 {
				t.Fatalf("Get(0) = (%d,%v)", v, ok)
			}
			if !m.Insert(th, 10, 100) || m.Insert(th, 10, 200) {
				t.Fatal("insert semantics")
			}
			got := m.RangeQuery(th, 0, 20, nil)
			if len(got) != 2 || got[0].Key > got[1].Key {
				// BST/EBR results may be unsorted; sort before checking.
				sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
			}
			if len(got) != 2 || got[0].Key != 0 || got[1].Key != 10 {
				t.Fatalf("range = %v", got)
			}
			if !m.Delete(th, 0) || m.Contains(th, 0) {
				t.Fatal("delete semantics")
			}
			if m.Len() != 1 {
				t.Fatalf("Len = %d", m.Len())
			}
			// Out-of-range keys are rejected, not wrapped.
			if m.Insert(th, MaxKey+1, 1) || m.Contains(th, MaxKey+1) {
				t.Fatal("key above MaxKey accepted")
			}
		})
	}
}

func TestConcurrentSmokeEveryCombo(t *testing.T) {
	for _, c := range allCombos() {
		c := c
		t.Run(fmt.Sprintf("%v-%v", c.S, c.T), func(t *testing.T) {
			n := 600
			if c.S == LazyList {
				n = 150 // O(n) traversals
			}
			m, err := New(c.S, c.T, Config{Source: TSC, MaxThreads: 8})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th, err := m.RegisterThread()
					if err != nil {
						t.Error(err)
						return
					}
					defer th.Release()
					base := uint64(g * 10_000)
					for i := uint64(0); i < uint64(n); i++ {
						m.Insert(th, base+i, i)
					}
					for i := uint64(0); i < uint64(n); i += 2 {
						m.Delete(th, base+i)
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				th, _ := m.RegisterThread()
				defer th.Release()
				for r := 0; r < 30; r++ {
					kvs := m.RangeQuery(th, 0, 30_000, nil)
					seen := map[uint64]bool{}
					for _, kv := range kvs {
						if seen[kv.Key] {
							t.Errorf("duplicate key %d in snapshot", kv.Key)
							return
						}
						seen[kv.Key] = true
					}
				}
			}()
			wg.Wait()
			if got := m.Len(); got != 3*n/2 {
				t.Fatalf("Len = %d, want %d", got, 3*n/2)
			}
		})
	}
}

func TestNowMonotone(t *testing.T) {
	prev := Now()
	for i := 0; i < 10000; i++ {
		now := Now()
		if now < prev {
			t.Fatalf("Now went backwards: %d then %d", prev, now)
		}
		prev = now
	}
	t.Logf("HardwareTimestampSupported = %v", HardwareTimestampSupported())
}

// Property: facade range queries agree with a model map, across combos.
func TestRangeAgainstModelProperty(t *testing.T) {
	for _, c := range allCombos() {
		c := c
		f := func(keys []uint16, lo16, span16 uint16) bool {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2})
			if err != nil {
				return false
			}
			th, _ := m.RegisterThread()
			model := map[uint64]bool{}
			for i, k16 := range keys {
				if i > 60 {
					break
				}
				k := uint64(k16 % 512)
				if model[k] {
					m.Delete(th, k)
					delete(model, k)
				} else {
					m.Insert(th, k, k)
					model[k] = true
				}
			}
			lo := uint64(lo16 % 512)
			hi := lo + uint64(span16%64)
			got := m.RangeQuery(th, lo, hi, nil)
			want := 0
			for k := range model {
				if k >= lo && k <= hi {
					want++
				}
			}
			if len(got) != want {
				return false
			}
			for _, kv := range got {
				if !model[kv.Key] || kv.Key < lo || kv.Key > hi {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%v/%v: %v", c.S, c.T, err)
		}
	}
}

func TestScanStreamsSortedAndStopsEarly(t *testing.T) {
	for _, c := range allCombos() {
		m, err := New(c.S, c.T, Config{Source: TSC, MaxThreads: 2})
		if err != nil {
			t.Fatal(err)
		}
		th, _ := m.RegisterThread()
		for _, k := range []uint64{9, 3, 7, 1, 5} {
			m.Insert(th, k, k*2)
		}
		var keys []uint64
		m.Scan(th, 2, 8, func(kv KV) bool {
			keys = append(keys, kv.Key)
			return true
		})
		want := []uint64{3, 5, 7}
		if len(keys) != len(want) {
			t.Fatalf("%v/%v: scan = %v", c.S, c.T, keys)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("%v/%v: scan order = %v", c.S, c.T, keys)
			}
		}
		count := 0
		m.Scan(th, 0, MaxKey, func(KV) bool {
			count++
			return count < 2
		})
		if count != 2 {
			t.Fatalf("%v/%v: fn called after returning false (visited %d)", c.S, c.T, count)
		}
		// An empty interval (hi < lo) never calls fn.
		m.Scan(th, 8, 2, func(kv KV) bool {
			t.Fatalf("%v/%v: empty interval called fn with %v", c.S, c.T, kv)
			return true
		})
		th.Release()
	}
}

// An OrdoSource-wrapped structure behaves identically through the
// internal registry path (the facade builds plain sources; this checks
// the Source interface boundary is honored by the techniques).
func TestBatchStoreFacade(t *testing.T) {
	st, reg := NewBatchStore(Config{Source: TSC, MaxThreads: 4})
	th, err := reg.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	st.Apply(th, []BatchOp{{Key: 1, Val: 10}, {Key: 2, Val: 20}})
	sn := st.Snapshot(th)
	a, okA := sn.Get(1)
	b, okB := sn.Get(2)
	sn.Close()
	if !okA || !okB || a != 10 || b != 20 {
		t.Fatalf("batch read back (%d,%v) (%d,%v)", a, okA, b, okB)
	}
	st.Remove(th, 1)
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

// MaxKey round-trips through the key-shifted structures (skip list,
// lazy list) without overflowing into their sentinels.
func TestMaxKeyBoundaryShiftedStructures(t *testing.T) {
	for _, c := range []struct {
		S Structure
		T Technique
	}{{SkipList, Bundle}, {SkipList, VCAS}, {SkipList, EBRRQ}, {LazyList, Bundle}, {LazyList, VCAS}} {
		m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2})
		if err != nil {
			t.Fatal(err)
		}
		th, _ := m.RegisterThread()
		if !m.Insert(th, MaxKey, 1) {
			t.Fatalf("%v/%v: MaxKey not insertable", c.S, c.T)
		}
		if !m.Contains(th, MaxKey) {
			t.Fatalf("%v/%v: MaxKey vanished", c.S, c.T)
		}
		got := m.RangeQuery(th, MaxKey-1, MaxKey, nil)
		if len(got) != 1 || got[0].Key != MaxKey {
			t.Fatalf("%v/%v: boundary range = %v", c.S, c.T, got)
		}
		if !m.Delete(th, MaxKey) {
			t.Fatalf("%v/%v: MaxKey not deletable", c.S, c.T)
		}
		th.Release()
	}
}
